// Package platform models the multicore server the transcoder runs on.
//
// The paper's testbed is a dual-socket Intel Xeon E5-2667 v4 machine:
// 16 physical cores, 32 hardware threads, per-core DVFS from 1.2 to
// 3.2 GHz. The controller couples to the platform through exactly three
// effects, all reproduced here:
//
//   - throughput scales with the per-core frequency chosen for a session's
//     threads;
//   - sessions contend for cores: hyperthread siblings are slower than a
//     whole core, and oversubscription time-shares what is left;
//   - package power is idle power plus a dynamic term per busy core,
//     proportional to V^2*f (the CMOS dynamic-power law), which is what a
//     RAPL-style meter would report against the server's power cap.
package platform

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// FreqVolt is one rung of the DVFS ladder: an operating frequency and the
// core voltage the P-state runs at.
type FreqVolt struct {
	GHz   float64
	Volts float64
}

// Spec describes the hardware and its calibrated power constants.
type Spec struct {
	// Sockets, CoresPerSocket and ThreadsPerCore define the topology
	// (2 x 8 x 2 for the paper's machine).
	Sockets        int
	CoresPerSocket int
	ThreadsPerCore int
	// Ladder is the DVFS ladder in ascending frequency order.
	Ladder []FreqVolt
	// MinRealTimeGHz is the lowest frequency able to sustain real-time
	// transcoding; the paper discards rungs below 1.6 GHz (SIII-B).
	MinRealTimeGHz float64
	// IdlePowerW is package power with all cores idle.
	IdlePowerW float64
	// DynPowerPerCoreW is the dynamic power of one fully-busy core at the
	// top of the ladder; other rungs scale by V^2*f.
	DynPowerPerCoreW float64
	// HTEfficiency is the extra throughput a core gains from its second
	// hardware thread. The default folds in the shared-cache and
	// memory-bandwidth contention video encoders suffer at high thread
	// counts, so it is lower than a pure-compute hyperthreading gain.
	HTEfficiency float64
	// PowerCapW is the cap the server manager sets (Pcap in the paper).
	PowerCapW float64
	// PowerNoiseW is the std-dev of the power-meter reading jitter.
	PowerNoiseW float64
	// Thermal is the optional package thermal model; the zero value
	// disables it.
	Thermal ThermalSpec
}

// DefaultSpec returns the paper's platform: dual Xeon E5-2667 v4 with the
// power constants calibrated to the wattage scale of Fig. 4 / Table II.
func DefaultSpec() Spec {
	return Spec{
		Sockets:        2,
		CoresPerSocket: 8,
		ThreadsPerCore: 2,
		Ladder: []FreqVolt{
			{1.2, 0.80}, {1.4, 0.82}, {1.6, 0.85}, {1.9, 0.90},
			{2.3, 0.95}, {2.6, 1.00}, {2.9, 1.05}, {3.2, 1.10},
		},
		MinRealTimeGHz:   1.6,
		IdlePowerW:       50,
		DynPowerPerCoreW: 4.2,
		HTEfficiency:     0.25,
		PowerCapW:        140,
		PowerNoiseW:      0.8,
	}
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.Sockets < 1 || s.CoresPerSocket < 1 || s.ThreadsPerCore < 1 {
		return fmt.Errorf("platform: topology %dx%dx%d invalid", s.Sockets, s.CoresPerSocket, s.ThreadsPerCore)
	}
	if len(s.Ladder) == 0 {
		return fmt.Errorf("platform: empty DVFS ladder")
	}
	prev := 0.0
	for _, fv := range s.Ladder {
		if fv.GHz <= prev {
			return fmt.Errorf("platform: ladder not strictly ascending at %g GHz", fv.GHz)
		}
		if fv.Volts <= 0 {
			return fmt.Errorf("platform: non-positive voltage %g at %g GHz", fv.Volts, fv.GHz)
		}
		prev = fv.GHz
	}
	if s.IdlePowerW < 0 || s.DynPowerPerCoreW <= 0 {
		return fmt.Errorf("platform: power constants invalid (idle %g, dyn %g)", s.IdlePowerW, s.DynPowerPerCoreW)
	}
	if s.HTEfficiency < 0 || s.HTEfficiency > 1 {
		return fmt.Errorf("platform: HT efficiency %g outside [0,1]", s.HTEfficiency)
	}
	if s.PowerCapW <= s.IdlePowerW {
		return fmt.Errorf("platform: power cap %g not above idle %g", s.PowerCapW, s.IdlePowerW)
	}
	if s.PowerNoiseW < 0 {
		return fmt.Errorf("platform: negative power noise")
	}
	if !s.freqOnLadder(s.MinRealTimeGHz) {
		return fmt.Errorf("platform: MinRealTimeGHz %g not on ladder", s.MinRealTimeGHz)
	}
	if err := s.Thermal.Validate(); err != nil {
		return err
	}
	return nil
}

func (s Spec) freqOnLadder(f float64) bool {
	for _, fv := range s.Ladder {
		if fv.GHz == f {
			return true
		}
	}
	return false
}

// PhysicalCores returns the number of physical cores.
func (s Spec) PhysicalCores() int { return s.Sockets * s.CoresPerSocket }

// LogicalCPUs returns the number of hardware threads.
func (s Spec) LogicalCPUs() int { return s.PhysicalCores() * s.ThreadsPerCore }

// MaxGHz returns the top rung of the ladder.
func (s Spec) MaxGHz() float64 { return s.Ladder[len(s.Ladder)-1].GHz }

// Frequencies returns all ladder frequencies in ascending order.
func (s Spec) Frequencies() []float64 {
	out := make([]float64, len(s.Ladder))
	for i, fv := range s.Ladder {
		out[i] = fv.GHz
	}
	return out
}

// RealTimeFrequencies returns the rungs usable for real-time transcoding
// (>= MinRealTimeGHz); this is the DVFS agent's action set.
func (s Spec) RealTimeFrequencies() []float64 {
	var out []float64
	for _, fv := range s.Ladder {
		if fv.GHz >= s.MinRealTimeGHz {
			out = append(out, fv.GHz)
		}
	}
	return out
}

// voltage returns the ladder voltage for an exact rung frequency.
func (s Spec) voltage(f float64) (float64, error) {
	for _, fv := range s.Ladder {
		if fv.GHz == f {
			return fv.Volts, nil
		}
	}
	return 0, fmt.Errorf("platform: frequency %g GHz not on ladder", f)
}

// VFNorm returns the dynamic-power scale V^2*f of a rung, normalised to the
// top of the ladder (VFNorm(MaxGHz) == 1).
func (s Spec) VFNorm(f float64) (float64, error) {
	v, err := s.voltage(f)
	if err != nil {
		return 0, err
	}
	top := s.Ladder[len(s.Ladder)-1]
	return (v * v * f) / (top.Volts * top.Volts * top.GHz), nil
}

// StepUp returns the next rung above f (or f if already at the top),
// restricted to real-time rungs when rt is true.
func (s Spec) StepUp(f float64, rt bool) float64 {
	freqs := s.Frequencies()
	if rt {
		freqs = s.RealTimeFrequencies()
	}
	for _, g := range freqs {
		if g > f {
			return g
		}
	}
	return f
}

// StepDown returns the next rung below f (or f if already at the bottom),
// restricted to real-time rungs when rt is true.
func (s Spec) StepDown(f float64, rt bool) float64 {
	freqs := s.Frequencies()
	if rt {
		freqs = s.RealTimeFrequencies()
	}
	best := f
	for _, g := range freqs {
		if g < f && (best == f || g > best) {
			best = g
		}
	}
	return best
}

// Nearest returns the ladder rung closest to f.
func (s Spec) Nearest(f float64) float64 {
	freqs := s.Frequencies()
	i := sort.SearchFloat64s(freqs, f)
	if i == 0 {
		return freqs[0]
	}
	if i == len(freqs) {
		return freqs[len(freqs)-1]
	}
	if f-freqs[i-1] <= freqs[i]-f {
		return freqs[i-1]
	}
	return freqs[i]
}

// SessionLoad is one transcoding session's demand on the platform.
type SessionLoad struct {
	// Threads is the number of logical CPUs the session's encoder uses.
	Threads int
	// FreqGHz is the per-core DVFS setting of the session's cores; it must
	// be a ladder rung.
	FreqGHz float64
	// Speedup is the session's parallel efficiency in busy-core
	// equivalents (hevc.Encoder.Speedup); 0 < Speedup <= Threads.
	Speedup float64
}

// Snapshot is the platform state for a fixed set of session loads.
type Snapshot struct {
	// TotalThreads is the total logical-CPU demand.
	TotalThreads int
	// CapacityCores is the machine's effective compute capacity in
	// core-equivalents for this thread placement.
	CapacityCores float64
	// UsefulDemand is the sum of the sessions' parallel speedups: the
	// core-equivalents they could usefully consume.
	UsefulDemand float64
	// Scale in (0,1] is the contention factor every session's service is
	// multiplied by: 1 when the useful demand fits the capacity.
	Scale float64
	// Rates is the effective service rate of each session in cycles/sec.
	Rates []float64
	// DynPowerW is each session's share of the dynamic power (its busy
	// core-equivalents weighted by its V^2*f); idle power is not
	// attributed.
	DynPowerW []float64
	// PowerW is the package power a meter would read (includes jitter when
	// the server was built with an rng).
	PowerW float64
	// PowerIdealW is the noise-free model power.
	PowerIdealW float64
}

// Server evaluates platform snapshots. It is deliberately stateless apart
// from the metering rng: allocation follows a fair work-conserving OS
// scheduler, so the snapshot is a pure function of the loads.
type Server struct {
	spec Spec
	rng  *rand.Rand
}

// NewServer builds a server from a validated spec. A nil rng disables
// power-meter jitter.
func NewServer(spec Spec, rng *rand.Rand) (*Server, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Server{spec: spec, rng: rng}, nil
}

// Spec returns the server's hardware description.
func (srv *Server) Spec() Spec { return srv.spec }

// SetSpec swaps the server's hardware description live, after validating
// the replacement. It models operational events that change a machine's
// envelope mid-run — a firmware power-cap cut, thermal derating, or the
// cap's later restoration. Resident loads are untouched: callers that
// cache spec-derived values (frequency ladders, power budgets) must
// refresh them, and callers integrating power over time must settle the
// running segment at the old spec before swapping.
func (srv *Server) SetSpec(spec Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	srv.spec = spec
	return nil
}

// capacityCores returns the machine's effective compute capacity in
// core-equivalents when `total` logical CPUs are occupied: one core per
// thread up to the physical core count, then each extra sibling thread
// adds only HTEfficiency of a core (hyperthreading plus shared-cache and
// memory-bandwidth contention), and threads beyond the logical CPU count
// add nothing.
func (srv *Server) capacityCores(total int) float64 {
	cores := srv.spec.PhysicalCores()
	logical := srv.spec.LogicalCPUs()
	if total <= 0 {
		return 0
	}
	if total <= cores {
		return float64(total)
	}
	if total > logical {
		total = logical
	}
	return float64(cores) + srv.spec.HTEfficiency*float64(total-cores)
}

// Evaluate computes the platform snapshot for the given loads.
//
// Sharing model: WPP encoder threads block on wavefront dependencies
// rather than spin, so a stalled thread releases its core to other
// sessions. Capacity is therefore shared in proportion to each session's
// *useful* demand (its parallel speedup), not its raw thread count: when
// the total useful demand exceeds the capacity, every session's service is
// scaled by capacity/demand. Dynamic power follows the busy
// core-equivalents actually served, weighted by each session's V^2*f.
func (srv *Server) Evaluate(loads []SessionLoad) (Snapshot, error) {
	total := 0
	demand := 0.0
	for i, l := range loads {
		if l.Threads < 1 {
			return Snapshot{}, fmt.Errorf("platform: session %d requests %d threads", i, l.Threads)
		}
		if l.Speedup <= 0 || l.Speedup > float64(l.Threads)+1e-9 {
			return Snapshot{}, fmt.Errorf("platform: session %d speedup %g outside (0,threads]", i, l.Speedup)
		}
		if !srv.spec.freqOnLadder(l.FreqGHz) {
			return Snapshot{}, fmt.Errorf("platform: session %d frequency %g not on ladder", i, l.FreqGHz)
		}
		total += l.Threads
		demand += l.Speedup
	}
	capacity := srv.capacityCores(total)
	scale := 1.0
	if demand > capacity {
		scale = capacity / demand
	}
	snap := Snapshot{
		TotalThreads:  total,
		CapacityCores: capacity,
		UsefulDemand:  demand,
		Scale:         scale,
		Rates:         make([]float64, len(loads)),
		DynPowerW:     make([]float64, len(loads)),
	}
	power := srv.spec.IdlePowerW
	for i, l := range loads {
		vf, err := srv.spec.VFNorm(l.FreqGHz)
		if err != nil {
			return Snapshot{}, err
		}
		busy := l.Speedup * scale
		snap.Rates[i] = l.FreqGHz * 1e9 * busy
		snap.DynPowerW[i] = srv.spec.DynPowerPerCoreW * vf * busy
		power += snap.DynPowerW[i]
	}
	snap.PowerIdealW = power
	snap.PowerW = srv.MeterPower(power)
	return snap, nil
}

// MeterPower returns the package power a RAPL-style meter would report for
// the given noise-free model power: jitter is added when the server was
// built with an rng, and the reading is floored at zero. Each call
// consumes one rng draw, mirroring a discrete meter sample.
func (srv *Server) MeterPower(idealW float64) float64 {
	if srv.rng != nil && srv.spec.PowerNoiseW > 0 {
		return math.Max(0, idealW+srv.spec.PowerNoiseW*srv.rng.NormFloat64())
	}
	return idealW
}

// OverCap reports whether a power reading violates the server's cap.
func (srv *Server) OverCap(powerW float64) bool {
	return powerW >= srv.spec.PowerCapW
}
