package platform

import "fmt"

// ThermalSpec is a first-order RC thermal model of the CPU package, the
// standard lumped model used by the power/thermal-management literature
// the paper builds on (Iranfar et al., TPDS'18). Package temperature
// relaxes toward the steady state Ambient + Power*Rth with time constant
// Tau; at or above ThrottleC the platform throttles, scaling both service
// rate and dynamic power by ThrottleFactor until the package cools below
// the threshold again.
//
// The zero value disables thermal modelling entirely (the paper's
// evaluation does not exercise it; it is provided as the natural
// extension for thermally-constrained deployments).
type ThermalSpec struct {
	// Enabled turns thermal tracking (and throttling) on.
	Enabled bool
	// AmbientC is the inlet/ambient temperature.
	AmbientC float64
	// RthCPerW is the junction-to-ambient thermal resistance.
	RthCPerW float64
	// TauSec is the thermal time constant.
	TauSec float64
	// ThrottleC is the throttling threshold.
	ThrottleC float64
	// ThrottleFactor scales service rate and dynamic power while
	// throttled; in (0,1).
	ThrottleFactor float64
}

// DefaultThermalSpec returns constants typical of a dual-socket air-cooled
// server: full power (135 W) settles around 85C.
func DefaultThermalSpec() ThermalSpec {
	return ThermalSpec{
		Enabled:        true,
		AmbientC:       24,
		RthCPerW:       0.45,
		TauSec:         30,
		ThrottleC:      85,
		ThrottleFactor: 0.6,
	}
}

// Validate reports whether the thermal constants are usable. The disabled
// zero value is always valid.
func (t ThermalSpec) Validate() error {
	if !t.Enabled {
		return nil
	}
	if t.RthCPerW <= 0 || t.TauSec <= 0 {
		return fmt.Errorf("platform: thermal Rth %g / tau %g must be positive", t.RthCPerW, t.TauSec)
	}
	if t.ThrottleC <= t.AmbientC {
		return fmt.Errorf("platform: throttle point %gC not above ambient %gC", t.ThrottleC, t.AmbientC)
	}
	if t.ThrottleFactor <= 0 || t.ThrottleFactor >= 1 {
		return fmt.Errorf("platform: throttle factor %g outside (0,1)", t.ThrottleFactor)
	}
	return nil
}

// ThermalState tracks the package temperature over a run.
type ThermalState struct {
	spec  ThermalSpec
	tempC float64
	maxC  float64
	// time-weighted average accumulation
	integC   float64
	totalSec float64
}

// NewThermalState starts at ambient temperature.
func NewThermalState(spec ThermalSpec) (*ThermalState, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &ThermalState{spec: spec, tempC: spec.AmbientC, maxC: spec.AmbientC}, nil
}

// TempC returns the current package temperature.
func (ts *ThermalState) TempC() float64 { return ts.tempC }

// MaxC returns the highest temperature seen.
func (ts *ThermalState) MaxC() float64 { return ts.maxC }

// AvgC returns the time-weighted mean temperature (ambient before any
// advance).
func (ts *ThermalState) AvgC() float64 {
	if ts.totalSec == 0 {
		return ts.spec.AmbientC
	}
	return ts.integC / ts.totalSec
}

// Throttled reports whether the package is at or above the throttle
// threshold.
func (ts *ThermalState) Throttled() bool {
	return ts.spec.Enabled && ts.tempC >= ts.spec.ThrottleC
}

// Advance integrates the RC model over dt seconds at constant power,
// using the exact exponential solution of the first-order ODE.
func (ts *ThermalState) Advance(powerW, dt float64) {
	if !ts.spec.Enabled || dt <= 0 {
		return
	}
	steady := ts.spec.AmbientC + powerW*ts.spec.RthCPerW
	// T(t+dt) = steady + (T - steady) * exp(-dt/tau); a second-order
	// accurate rational approximation avoids math.Exp in the hot loop
	// for small steps and stays exact in the limit.
	k := dt / ts.spec.TauSec
	decay := 1 / (1 + k + 0.5*k*k)
	ts.tempC = steady + (ts.tempC-steady)*decay
	// Trapezoidal-ish accumulation for the average.
	ts.integC += ts.tempC * dt
	ts.totalSec += dt
	if ts.tempC > ts.maxC {
		ts.maxC = ts.tempC
	}
}

// ThrottleFactor returns the rate/power scale to apply while throttled.
func (ts *ThermalState) ThrottleFactor() float64 { return ts.spec.ThrottleFactor }
