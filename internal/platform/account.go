package platform

import "fmt"

// LoadAccount maintains the aggregate contention state of a server
// incrementally, so that admitting, releasing or re-shaping one session's
// load costs O(1) instead of re-evaluating every resident load the way
// Server.Evaluate does. It tracks exactly the three aggregates the sharing
// model needs:
//
//   - the total logical-CPU demand (for the capacity curve);
//   - the total useful demand, i.e. the sum of parallel speedups (for the
//     contention scale);
//   - the V^2*f-weighted useful demand (for dynamic package power).
//
// The event-scheduled transcode engine keeps one LoadAccount per server
// and touches only the session whose frame event fired; everything a
// Snapshot would report about the *aggregate* state is available from the
// accessors at O(1).
type LoadAccount struct {
	srv          *Server
	active       int
	totalThreads int
	demand       float64 // sum of Speedup over resident loads
	dynNorm      float64 // sum of VFNorm(FreqGHz)*Speedup over resident loads
}

// NewLoadAccount returns an empty account for the server.
func (srv *Server) NewLoadAccount() *LoadAccount { return &LoadAccount{srv: srv} }

// check validates a load exactly like Evaluate does and resolves its
// dynamic-power norm.
func (a *LoadAccount) check(l SessionLoad) (vf float64, err error) {
	if l.Threads < 1 {
		return 0, fmt.Errorf("platform: load requests %d threads", l.Threads)
	}
	if l.Speedup <= 0 || l.Speedup > float64(l.Threads)+1e-9 {
		return 0, fmt.Errorf("platform: load speedup %g outside (0,threads]", l.Speedup)
	}
	vf, err = a.srv.spec.VFNorm(l.FreqGHz)
	if err != nil {
		return 0, err
	}
	return vf, nil
}

// Add admits one session load into the aggregate state.
func (a *LoadAccount) Add(l SessionLoad) error {
	vf, err := a.check(l)
	if err != nil {
		return err
	}
	a.active++
	a.totalThreads += l.Threads
	a.demand += l.Speedup
	a.dynNorm += vf * l.Speedup
	return nil
}

// Remove releases a load previously admitted with Add (or installed by
// Update). The caller must pass the same load value; Remove returns an
// error — without touching the aggregates — on a load that cannot have
// been admitted, since completing the removal would silently corrupt the
// account. When the last load leaves, the float aggregates reset to exact
// zero so rounding drift cannot accumulate across load epochs.
func (a *LoadAccount) Remove(l SessionLoad) error {
	vf, err := a.check(l)
	if err != nil || a.active < 1 {
		return fmt.Errorf("platform: removing load %+v never admitted (%v)", l, err)
	}
	a.active--
	a.totalThreads -= l.Threads
	if a.active == 0 {
		a.totalThreads = 0
		a.demand = 0
		a.dynNorm = 0
		return nil
	}
	a.demand -= l.Speedup
	a.dynNorm -= vf * l.Speedup
	if a.demand < 0 {
		a.demand = 0
	}
	if a.dynNorm < 0 {
		a.dynNorm = 0
	}
	return nil
}

// Update replaces a resident load with a new shape in one step. A no-op
// when the shapes are equal, so callers may invoke it unconditionally per
// frame without paying the ladder lookup.
func (a *LoadAccount) Update(old, new SessionLoad) error {
	if old == new {
		return nil
	}
	if _, err := a.check(new); err != nil {
		return err
	}
	if err := a.Remove(old); err != nil {
		return err
	}
	return a.Add(new)
}

// Active returns the number of resident loads.
func (a *LoadAccount) Active() int { return a.active }

// TotalThreads returns the aggregate logical-CPU demand.
func (a *LoadAccount) TotalThreads() int { return a.totalThreads }

// UsefulDemand returns the aggregate parallel speedup in core-equivalents.
func (a *LoadAccount) UsefulDemand() float64 { return a.demand }

// CapacityCores returns the machine's effective capacity for the current
// thread placement.
func (a *LoadAccount) CapacityCores() float64 { return a.srv.capacityCores(a.totalThreads) }

// Scale returns the contention factor in (0,1] every resident session's
// service is multiplied by: 1 when the useful demand fits the capacity.
func (a *LoadAccount) Scale() float64 {
	if a.active == 0 || a.demand <= 0 {
		return 1
	}
	capacity := a.CapacityCores()
	if a.demand > capacity {
		return capacity / a.demand
	}
	return 1
}

// DynPowerW returns the aggregate dynamic package power at the current
// contention scale (excluding idle power and thermal throttling).
func (a *LoadAccount) DynPowerW() float64 {
	if a.active == 0 {
		return 0
	}
	return a.srv.spec.DynPowerPerCoreW * a.dynNorm * a.Scale()
}

// PowerIdealW returns the noise-free model package power.
func (a *LoadAccount) PowerIdealW() float64 { return a.srv.spec.IdlePowerW + a.DynPowerW() }
