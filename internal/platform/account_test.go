package platform

import (
	"math"
	"math/rand"
	"testing"
)

func randLoad(rng *rand.Rand, spec Spec) SessionLoad {
	threads := 1 + rng.Intn(12)
	freqs := spec.Frequencies()
	return SessionLoad{
		Threads: threads,
		FreqGHz: freqs[rng.Intn(len(freqs))],
		Speedup: 0.2 + rng.Float64()*(float64(threads)-0.2),
	}
}

// checkAgainstEvaluate asserts the account's aggregates match a from-
// scratch Evaluate over the same resident loads.
func checkAgainstEvaluate(t *testing.T, srv *Server, a *LoadAccount, resident []SessionLoad) {
	t.Helper()
	snap, err := srv.Evaluate(resident)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1e-9
	if a.Active() != len(resident) {
		t.Fatalf("active = %d, want %d", a.Active(), len(resident))
	}
	if a.TotalThreads() != snap.TotalThreads {
		t.Errorf("total threads = %d, evaluate %d", a.TotalThreads(), snap.TotalThreads)
	}
	if math.Abs(a.UsefulDemand()-snap.UsefulDemand) > tol*(1+snap.UsefulDemand) {
		t.Errorf("demand = %g, evaluate %g", a.UsefulDemand(), snap.UsefulDemand)
	}
	if a.CapacityCores() != snap.CapacityCores {
		t.Errorf("capacity = %g, evaluate %g", a.CapacityCores(), snap.CapacityCores)
	}
	if math.Abs(a.Scale()-snap.Scale) > tol {
		t.Errorf("scale = %g, evaluate %g", a.Scale(), snap.Scale)
	}
	if math.Abs(a.PowerIdealW()-snap.PowerIdealW) > tol*(1+snap.PowerIdealW) {
		t.Errorf("power = %g, evaluate %g", a.PowerIdealW(), snap.PowerIdealW)
	}
}

func TestLoadAccountMatchesEvaluateUnderChurn(t *testing.T) {
	srv, err := NewServer(DefaultSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	a := srv.NewLoadAccount()
	var resident []SessionLoad

	for step := 0; step < 500; step++ {
		switch {
		case len(resident) == 0 || rng.Float64() < 0.45:
			l := randLoad(rng, srv.Spec())
			if err := a.Add(l); err != nil {
				t.Fatal(err)
			}
			resident = append(resident, l)
		case rng.Float64() < 0.5:
			i := rng.Intn(len(resident))
			if err := a.Remove(resident[i]); err != nil {
				t.Fatal(err)
			}
			resident = append(resident[:i], resident[i+1:]...)
		default:
			i := rng.Intn(len(resident))
			l := randLoad(rng, srv.Spec())
			if err := a.Update(resident[i], l); err != nil {
				t.Fatal(err)
			}
			resident[i] = l
		}
		if len(resident) > 0 {
			checkAgainstEvaluate(t, srv, a, resident)
		}
	}
}

func TestLoadAccountEmptyResetsExactly(t *testing.T) {
	srv, err := NewServer(DefaultSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	a := srv.NewLoadAccount()
	rng := rand.New(rand.NewSource(9))
	var resident []SessionLoad
	for i := 0; i < 40; i++ {
		l := randLoad(rng, srv.Spec())
		if err := a.Add(l); err != nil {
			t.Fatal(err)
		}
		resident = append(resident, l)
	}
	// Remove in a scrambled order: the float aggregates drift, but the
	// final removal must reset them to exact zero.
	rng.Shuffle(len(resident), func(i, j int) { resident[i], resident[j] = resident[j], resident[i] })
	for _, l := range resident {
		if err := a.Remove(l); err != nil {
			t.Fatal(err)
		}
	}
	if a.Active() != 0 || a.TotalThreads() != 0 {
		t.Fatalf("account not empty: active %d, threads %d", a.Active(), a.TotalThreads())
	}
	if a.UsefulDemand() != 0 || a.Scale() != 1 {
		t.Errorf("demand %g / scale %g not exactly reset", a.UsefulDemand(), a.Scale())
	}
	if a.DynPowerW() != 0 || a.PowerIdealW() != srv.Spec().IdlePowerW {
		t.Errorf("power %g not exactly idle %g", a.PowerIdealW(), srv.Spec().IdlePowerW)
	}
}

func TestLoadAccountValidation(t *testing.T) {
	srv, err := NewServer(DefaultSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	a := srv.NewLoadAccount()
	bad := []SessionLoad{
		{Threads: 0, FreqGHz: 2.6, Speedup: 1},
		{Threads: 4, FreqGHz: 2.6, Speedup: 0},
		{Threads: 4, FreqGHz: 2.6, Speedup: 5},  // speedup > threads
		{Threads: 4, FreqGHz: 2.75, Speedup: 2}, // off-ladder frequency
	}
	for i, l := range bad {
		if err := a.Add(l); err == nil {
			t.Errorf("bad load %d accepted", i)
		}
	}
	if a.Active() != 0 {
		t.Fatalf("rejected loads mutated the account (active %d)", a.Active())
	}
	good := SessionLoad{Threads: 4, FreqGHz: 2.6, Speedup: 2.5}
	if err := a.Add(good); err != nil {
		t.Fatal(err)
	}
	for i, l := range bad {
		if err := a.Update(good, l); err == nil {
			t.Errorf("bad update %d accepted", i)
		}
	}
	if a.Active() != 1 || a.TotalThreads() != 4 {
		t.Errorf("failed updates mutated the account: active %d threads %d", a.Active(), a.TotalThreads())
	}
	// No-op update keeps state bit-identical.
	demand := a.UsefulDemand()
	if err := a.Update(good, good); err != nil {
		t.Fatal(err)
	}
	if a.UsefulDemand() != demand {
		t.Error("no-op update changed the demand aggregate")
	}
}

func TestLoadAccountRemoveNeverAdmitted(t *testing.T) {
	srv, err := NewServer(DefaultSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	a := srv.NewLoadAccount()
	good := SessionLoad{Threads: 4, FreqGHz: 2.6, Speedup: 2.5}
	// Removing from an empty account is an error, not a panic, and must
	// leave the aggregates untouched.
	if err := a.Remove(good); err == nil {
		t.Fatal("Remove from empty account succeeded")
	}
	if a.Active() != 0 || a.TotalThreads() != 0 {
		t.Fatalf("failed Remove mutated the account: active %d threads %d", a.Active(), a.TotalThreads())
	}
	if err := a.Add(good); err != nil {
		t.Fatal(err)
	}
	// A malformed load is rejected the same way with a resident load.
	if err := a.Remove(SessionLoad{Threads: 0, FreqGHz: 2.6, Speedup: 1}); err == nil {
		t.Fatal("Remove of invalid load succeeded")
	}
	if a.Active() != 1 || a.TotalThreads() != 4 {
		t.Fatalf("failed Remove mutated the account: active %d threads %d", a.Active(), a.TotalThreads())
	}
	// An Update whose old load is malformed propagates the Remove error.
	if err := a.Update(SessionLoad{Threads: 0, FreqGHz: 2.6, Speedup: 1}, good); err == nil {
		t.Fatal("Update with never-admitted old load succeeded")
	}
	if err := a.Remove(good); err != nil {
		t.Fatal(err)
	}
}

func TestMeterPowerMatchesEvaluateJitter(t *testing.T) {
	spec := DefaultSpec()
	loads := []SessionLoad{{Threads: 8, FreqGHz: 2.9, Speedup: 5}}
	srvA, err := NewServer(spec, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := NewServer(spec, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		snap, err := srvA.Evaluate(loads)
		if err != nil {
			t.Fatal(err)
		}
		if got := srvB.MeterPower(snap.PowerIdealW); got != snap.PowerW {
			t.Fatalf("draw %d: MeterPower %g != Evaluate metering %g", i, got, snap.PowerW)
		}
	}
	// nil rng or zero noise: the reading is the ideal power.
	quiet, err := NewServer(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if quiet.MeterPower(123.4) != 123.4 {
		t.Error("nil-rng meter added jitter")
	}
}
