package platform

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultThermalSpecValid(t *testing.T) {
	if err := DefaultThermalSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	// The zero value (disabled) is valid too.
	if err := (ThermalSpec{}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestThermalSpecValidation(t *testing.T) {
	mut := []func(*ThermalSpec){
		func(s *ThermalSpec) { s.RthCPerW = 0 },
		func(s *ThermalSpec) { s.TauSec = -1 },
		func(s *ThermalSpec) { s.ThrottleC = s.AmbientC },
		func(s *ThermalSpec) { s.ThrottleFactor = 0 },
		func(s *ThermalSpec) { s.ThrottleFactor = 1 },
	}
	for i, f := range mut {
		s := DefaultThermalSpec()
		f(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestThermalStateStartsAtAmbient(t *testing.T) {
	ts, err := NewThermalState(DefaultThermalSpec())
	if err != nil {
		t.Fatal(err)
	}
	if ts.TempC() != 24 || ts.MaxC() != 24 || ts.AvgC() != 24 {
		t.Errorf("initial temps %g/%g/%g, want ambient", ts.TempC(), ts.MaxC(), ts.AvgC())
	}
	if ts.Throttled() {
		t.Error("throttled at ambient")
	}
}

func TestThermalStateConvergesToSteadyState(t *testing.T) {
	spec := DefaultThermalSpec()
	spec.ThrottleC = 1000 // never throttle in this test
	ts, err := NewThermalState(spec)
	if err != nil {
		t.Fatal(err)
	}
	const power = 100.0
	steady := spec.AmbientC + power*spec.RthCPerW // 24 + 45 = 69
	for i := 0; i < 10000; i++ {
		ts.Advance(power, 0.05)
	}
	if math.Abs(ts.TempC()-steady) > 0.5 {
		t.Errorf("temperature %g, want steady state %g", ts.TempC(), steady)
	}
	if ts.MaxC() > steady+0.5 {
		t.Errorf("overshoot: max %g above steady %g", ts.MaxC(), steady)
	}
	if ts.AvgC() <= spec.AmbientC || ts.AvgC() >= steady {
		t.Errorf("average %g outside (ambient, steady)", ts.AvgC())
	}
}

func TestThermalThrottleTrigger(t *testing.T) {
	spec := DefaultThermalSpec()
	ts, err := NewThermalState(spec)
	if err != nil {
		t.Fatal(err)
	}
	// 150 W steady state is 24 + 67.5 = 91.5C > 85C: must throttle
	// eventually.
	for i := 0; i < 100000 && !ts.Throttled(); i++ {
		ts.Advance(150, 0.05)
	}
	if !ts.Throttled() {
		t.Fatal("high power never triggered throttling")
	}
	if ts.ThrottleFactor() != spec.ThrottleFactor {
		t.Error("throttle factor mismatch")
	}
	// Cooling at idle power brings it back below the threshold.
	for i := 0; i < 100000 && ts.Throttled(); i++ {
		ts.Advance(50, 0.05)
	}
	if ts.Throttled() {
		t.Error("never recovered from throttling at low power")
	}
}

func TestThermalDisabledIsInert(t *testing.T) {
	ts, err := NewThermalState(ThermalSpec{})
	if err != nil {
		t.Fatal(err)
	}
	ts.Advance(500, 100)
	if ts.TempC() != 0 || ts.Throttled() {
		t.Error("disabled thermal state changed")
	}
}

// Property: temperature stays within [ambient, ambient + P*Rth] for any
// constant power and any step pattern.
func TestThermalBoundsProperty(t *testing.T) {
	spec := DefaultThermalSpec()
	spec.ThrottleC = 10000
	prop := func(powerRaw, dtRaw float64, steps uint8) bool {
		power := math.Mod(math.Abs(powerRaw), 200)
		ts, err := NewThermalState(spec)
		if err != nil {
			return false
		}
		hi := spec.AmbientC + power*spec.RthCPerW
		n := 1 + int(steps)%100
		for i := 0; i < n; i++ {
			dt := 0.001 + math.Mod(math.Abs(dtRaw), 5)
			ts.Advance(power, dt)
			if ts.TempC() < spec.AmbientC-1e-9 || ts.TempC() > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
