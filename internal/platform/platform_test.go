package platform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustServer(t *testing.T) *Server {
	t.Helper()
	srv, err := NewServer(DefaultSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestDefaultSpecTopology(t *testing.T) {
	s := DefaultSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.PhysicalCores() != 16 {
		t.Errorf("physical cores = %d, want 16", s.PhysicalCores())
	}
	if s.LogicalCPUs() != 32 {
		t.Errorf("logical CPUs = %d, want 32", s.LogicalCPUs())
	}
	if s.MaxGHz() != 3.2 {
		t.Errorf("max frequency = %g, want 3.2", s.MaxGHz())
	}
}

func TestRealTimeFrequenciesMatchPaper(t *testing.T) {
	s := DefaultSpec()
	got := s.RealTimeFrequencies()
	want := []float64{1.6, 1.9, 2.3, 2.6, 2.9, 3.2}
	if len(got) != len(want) {
		t.Fatalf("real-time rungs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("real-time rungs = %v, want %v", got, want)
		}
	}
	// The full ladder additionally has the sub-real-time rungs the paper
	// discards (1.2, 1.4).
	if n := len(s.Frequencies()); n != 8 {
		t.Errorf("full ladder has %d rungs, want 8", n)
	}
}

func TestSpecValidateRejectsBadSpecs(t *testing.T) {
	mut := []func(*Spec){
		func(s *Spec) { s.Sockets = 0 },
		func(s *Spec) { s.Ladder = nil },
		func(s *Spec) { s.Ladder = []FreqVolt{{2, 1}, {1, 1}} },
		func(s *Spec) { s.Ladder[2].Volts = 0 },
		func(s *Spec) { s.DynPowerPerCoreW = 0 },
		func(s *Spec) { s.HTEfficiency = 1.5 },
		func(s *Spec) { s.PowerCapW = s.IdlePowerW },
		func(s *Spec) { s.PowerNoiseW = -1 },
		func(s *Spec) { s.MinRealTimeGHz = 1.7 },
	}
	for i, f := range mut {
		s := DefaultSpec()
		f(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestVFNormMonotoneAndNormalised(t *testing.T) {
	s := DefaultSpec()
	prev := 0.0
	for _, f := range s.Frequencies() {
		vf, err := s.VFNorm(f)
		if err != nil {
			t.Fatal(err)
		}
		if vf <= prev {
			t.Fatalf("VFNorm not strictly increasing at %g GHz", f)
		}
		prev = vf
	}
	top, _ := s.VFNorm(s.MaxGHz())
	if math.Abs(top-1) > 1e-12 {
		t.Errorf("VFNorm at top = %g, want 1", top)
	}
	if _, err := s.VFNorm(2.0); err == nil {
		t.Error("off-ladder frequency accepted")
	}
}

func TestStepUpDown(t *testing.T) {
	s := DefaultSpec()
	if got := s.StepUp(2.3, true); got != 2.6 {
		t.Errorf("StepUp(2.3) = %g, want 2.6", got)
	}
	if got := s.StepUp(3.2, true); got != 3.2 {
		t.Errorf("StepUp at top = %g, want 3.2", got)
	}
	if got := s.StepDown(2.3, true); got != 1.9 {
		t.Errorf("StepDown(2.3) = %g, want 1.9", got)
	}
	if got := s.StepDown(1.6, true); got != 1.6 {
		t.Errorf("StepDown at real-time floor = %g, want 1.6", got)
	}
	if got := s.StepDown(1.6, false); got != 1.4 {
		t.Errorf("StepDown(1.6, all rungs) = %g, want 1.4", got)
	}
}

func TestNearest(t *testing.T) {
	s := DefaultSpec()
	cases := []struct{ in, want float64 }{
		{0.5, 1.2}, {1.25, 1.2}, {1.31, 1.4}, {2.8, 2.9}, {5.0, 3.2}, {2.3, 2.3},
	}
	for _, c := range cases {
		if got := s.Nearest(c.in); got != c.want {
			t.Errorf("Nearest(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestCapacityCoresRegimes(t *testing.T) {
	srv := mustServer(t)
	// Up to 16 threads each gets a whole core.
	for _, n := range []int{1, 8, 16} {
		if got := srv.capacityCores(n); got != float64(n) {
			t.Errorf("capacity(%d) = %g, want %d", n, got, n)
		}
	}
	// Hyperthreaded region: each extra sibling adds HTEfficiency of a
	// core. At 32 threads: 16 + 0.25*16 = 20 core-equivalents.
	c24 := srv.capacityCores(24)
	if want := 16 + 0.25*8; math.Abs(c24-want) > 1e-12 {
		t.Errorf("capacity(24) = %g, want %g", c24, want)
	}
	c32 := srv.capacityCores(32)
	if want := 20.0; math.Abs(c32-want) > 1e-12 {
		t.Errorf("capacity(32) = %g, want %g", c32, want)
	}
	// Oversubscription adds nothing.
	if srv.capacityCores(64) != c32 {
		t.Error("capacity should be flat past the logical CPU count")
	}
	if srv.capacityCores(0) != 0 {
		t.Error("capacity(0) should be 0")
	}
}

func TestEvaluateSingleSessionPowerAnchor(t *testing.T) {
	// Fig. 2 anchor: one 1080p stream, 10 threads at 3.2 GHz with WPP
	// speedup ~6 should land near 75-80 W; 1 thread near 52-55 W.
	srv := mustServer(t)
	snap, err := srv.Evaluate([]SessionLoad{{Threads: 10, FreqGHz: 3.2, Speedup: 6.0}})
	if err != nil {
		t.Fatal(err)
	}
	if snap.PowerIdealW < 70 || snap.PowerIdealW > 85 {
		t.Errorf("10-thread power = %.1f W, want ~80", snap.PowerIdealW)
	}
	snap1, err := srv.Evaluate([]SessionLoad{{Threads: 1, FreqGHz: 3.2, Speedup: 1.0}})
	if err != nil {
		t.Fatal(err)
	}
	if snap1.PowerIdealW < 50 || snap1.PowerIdealW > 60 {
		t.Errorf("1-thread power = %.1f W, want ~55", snap1.PowerIdealW)
	}
	if snap1.PowerIdealW >= snap.PowerIdealW {
		t.Error("power should grow with busy cores")
	}
}

func TestEvaluateRates(t *testing.T) {
	srv := mustServer(t)
	loads := []SessionLoad{
		{Threads: 10, FreqGHz: 3.2, Speedup: 6.0},
		{Threads: 5, FreqGHz: 1.6, Speedup: 3.0},
	}
	snap, err := srv.Evaluate(loads)
	if err != nil {
		t.Fatal(err)
	}
	if snap.TotalThreads != 15 {
		t.Errorf("total threads = %d, want 15", snap.TotalThreads)
	}
	if snap.Scale != 1 {
		t.Errorf("scale = %g, want 1 (demand 9 fits capacity 15)", snap.Scale)
	}
	if math.Abs(snap.UsefulDemand-9.0) > 1e-12 {
		t.Errorf("useful demand = %g, want 9", snap.UsefulDemand)
	}
	if want := 3.2e9 * 6.0; math.Abs(snap.Rates[0]-want) > 1 {
		t.Errorf("rate0 = %g, want %g", snap.Rates[0], want)
	}
	if want := 1.6e9 * 3.0; math.Abs(snap.Rates[1]-want) > 1 {
		t.Errorf("rate1 = %g, want %g", snap.Rates[1], want)
	}
}

func TestEvaluateContentionSlowsEveryone(t *testing.T) {
	srv := mustServer(t)
	one := []SessionLoad{{Threads: 12, FreqGHz: 3.2, Speedup: 6.5}}
	snapOne, err := srv.Evaluate(one)
	if err != nil {
		t.Fatal(err)
	}
	four := []SessionLoad{
		{Threads: 12, FreqGHz: 3.2, Speedup: 6.5},
		{Threads: 12, FreqGHz: 3.2, Speedup: 6.5},
		{Threads: 12, FreqGHz: 3.2, Speedup: 6.5},
		{Threads: 12, FreqGHz: 3.2, Speedup: 6.5},
	}
	snapFour, err := srv.Evaluate(four)
	if err != nil {
		t.Fatal(err)
	}
	if snapFour.Rates[0] >= snapOne.Rates[0] {
		t.Errorf("oversubscription did not slow session: %g >= %g", snapFour.Rates[0], snapOne.Rates[0])
	}
	if snapFour.PowerIdealW <= snapOne.PowerIdealW {
		t.Error("more sessions should burn more power")
	}
}

func TestEvaluateErrors(t *testing.T) {
	srv := mustServer(t)
	bad := []([]SessionLoad){
		{{Threads: 0, FreqGHz: 3.2, Speedup: 1}},
		{{Threads: 4, FreqGHz: 2.0, Speedup: 2}},  // off-ladder freq
		{{Threads: 4, FreqGHz: 3.2, Speedup: 0}},  // zero speedup
		{{Threads: 4, FreqGHz: 3.2, Speedup: 10}}, // speedup > threads
	}
	for i, loads := range bad {
		if _, err := srv.Evaluate(loads); err == nil {
			t.Errorf("bad load %d accepted", i)
		}
	}
}

func TestEvaluateEmptyLoadsIsIdle(t *testing.T) {
	srv := mustServer(t)
	snap, err := srv.Evaluate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap.PowerIdealW != DefaultSpec().IdlePowerW {
		t.Errorf("idle power = %g, want %g", snap.PowerIdealW, DefaultSpec().IdlePowerW)
	}
}

func TestPowerNoise(t *testing.T) {
	spec := DefaultSpec()
	srv, err := NewServer(spec, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	loads := []SessionLoad{{Threads: 8, FreqGHz: 2.6, Speedup: 5}}
	varied := false
	for i := 0; i < 40; i++ {
		snap, err := srv.Evaluate(loads)
		if err != nil {
			t.Fatal(err)
		}
		if snap.PowerW != snap.PowerIdealW {
			varied = true
		}
		if math.Abs(snap.PowerW-snap.PowerIdealW) > 6*spec.PowerNoiseW {
			t.Errorf("power jitter too large: %g vs %g", snap.PowerW, snap.PowerIdealW)
		}
	}
	if !varied {
		t.Error("metering noise never applied")
	}
}

func TestOverCap(t *testing.T) {
	srv := mustServer(t)
	if srv.OverCap(139.9) {
		t.Error("139.9 W flagged over a 140 W cap")
	}
	if !srv.OverCap(140.0) {
		t.Error("140.0 W not flagged over cap")
	}
}

// Property: power is monotone in frequency and in speedup, and strength is
// non-increasing in total threads.
func TestPlatformMonotonicityProperty(t *testing.T) {
	srv := mustServer(t)
	freqs := DefaultSpec().Frequencies()
	prop := func(fIdx uint8, su float64, extra uint8) bool {
		i := int(fIdx) % (len(freqs) - 1)
		s := 0.5 + math.Mod(math.Abs(su), 6.0)
		lo, err1 := srv.Evaluate([]SessionLoad{{Threads: 8, FreqGHz: freqs[i], Speedup: s}})
		hi, err2 := srv.Evaluate([]SessionLoad{{Threads: 8, FreqGHz: freqs[i+1], Speedup: s}})
		if err1 != nil || err2 != nil {
			return false
		}
		if hi.PowerIdealW <= lo.PowerIdealW || hi.Rates[0] <= lo.Rates[0] {
			return false
		}
		t1 := 1 + int(extra)%40
		t2 := t1 + 1 + int(extra)%8
		return srv.capacityCores(t2) >= srv.capacityCores(t1)-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
